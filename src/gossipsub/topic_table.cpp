#include "gossipsub/topic_table.h"

#include "obs/memory.h"
#include "util/check.h"

namespace wakurln::gossipsub {

std::uint32_t TopicTable::intern(const TopicId& topic) {
  const auto it = index_.find(topic);
  if (it != index_.end()) return it->second;
  WAKURLN_CHECK_MSG(names_.size() < kMaxTopics,
                    "TopicTable: more than 64 distinct topics in one world");
  const auto idx = static_cast<std::uint32_t>(names_.size());
  names_.push_back(topic);
  index_.emplace(topic, idx);
  return idx;
}

std::uint32_t TopicTable::find(const TopicId& topic) const {
  const auto it = index_.find(topic);
  return it == index_.end() ? kNotFound : it->second;
}

std::size_t TopicTable::memory_bytes() const {
  std::size_t total = sizeof(TopicTable);
  total += names_.capacity() * sizeof(TopicId);
  for (const TopicId& t : names_) total += obs::string_heap_bytes(t);
  total += index_.bucket_count() * sizeof(void*);
  for (const auto& [t, idx] : index_) {
    (void)idx;
    total += obs::kUnorderedNodeBytes + sizeof(std::pair<const TopicId, std::uint32_t>) +
             obs::string_heap_bytes(t);
  }
  return total;
}

}  // namespace wakurln::gossipsub
