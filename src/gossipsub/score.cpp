#include "gossipsub/score.h"

#include <algorithm>

namespace wakurln::gossipsub {

void PeerScoreTracker::set_peer_ip(sim::NodeId peer, std::uint32_t ip) {
  PeerState& st = peers_[peer];
  if (st.has_ip) {
    auto it = peers_per_ip_.find(st.ip);
    if (it != peers_per_ip_.end() && it->second > 0) --it->second;
  }
  st.ip = ip;
  st.has_ip = true;
  ++peers_per_ip_[ip];
}

void PeerScoreTracker::remove_peer(sim::NodeId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  if (it->second.has_ip) {
    auto ip_it = peers_per_ip_.find(it->second.ip);
    if (ip_it != peers_per_ip_.end() && ip_it->second > 0) --ip_it->second;
  }
  peers_.erase(it);
}

void PeerScoreTracker::on_join_mesh(sim::NodeId peer, const TopicId& topic,
                                    sim::TimeUs now) {
  TopicCounters& tc = peers_[peer].topics[topic];
  tc.in_mesh = true;
  tc.mesh_joined_at = now;
}

void PeerScoreTracker::on_leave_mesh(sim::NodeId peer, const TopicId& topic) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  const auto tit = it->second.topics.find(topic);
  if (tit != it->second.topics.end()) tit->second.in_mesh = false;
}

void PeerScoreTracker::on_first_delivery(sim::NodeId peer, const TopicId& topic) {
  TopicCounters& tc = peers_[peer].topics[topic];
  tc.first_message_deliveries = std::min(tc.first_message_deliveries + 1.0,
                                         params_.topic.first_message_deliveries_cap);
}

void PeerScoreTracker::on_mesh_delivery(sim::NodeId peer, const TopicId& topic) {
  TopicCounters& tc = peers_[peer].topics[topic];
  tc.mesh_message_deliveries = std::min(tc.mesh_message_deliveries + 1.0,
                                        params_.topic.mesh_message_deliveries_cap);
}

void PeerScoreTracker::on_invalid_message(sim::NodeId peer, const TopicId& topic) {
  peers_[peer].topics[topic].invalid_message_deliveries += 1.0;
}

void PeerScoreTracker::decay() {
  for (auto& [peer, st] : peers_) {
    for (auto& [topic, tc] : st.topics) {
      tc.first_message_deliveries *= params_.topic.first_message_deliveries_decay;
      tc.mesh_message_deliveries *= params_.topic.mesh_message_deliveries_decay;
      tc.invalid_message_deliveries *= params_.topic.invalid_message_deliveries_decay;
    }
  }
}

double PeerScoreTracker::score(sim::NodeId peer, sim::TimeUs now) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return 0.0;
  const PeerState& st = it->second;

  double total = 0.0;
  for (const auto& [topic, tc] : st.topics) {
    double topic_score = 0.0;
    // P1: time in mesh.
    if (tc.in_mesh) {
      const double quanta =
          static_cast<double>(now - tc.mesh_joined_at) /
          static_cast<double>(params_.topic.time_in_mesh_quantum);
      topic_score += params_.topic.time_in_mesh_weight *
                     std::min(quanta, params_.topic.time_in_mesh_cap);
    }
    // P2: first message deliveries.
    topic_score +=
        params_.topic.first_message_deliveries_weight * tc.first_message_deliveries;
    // P3: mesh delivery deficit (active only after the activation window).
    if (params_.topic.mesh_message_deliveries_weight != 0.0 && tc.in_mesh &&
        now - tc.mesh_joined_at >= params_.topic.mesh_message_deliveries_activation) {
      const double deficit = params_.topic.mesh_message_deliveries_threshold -
                             tc.mesh_message_deliveries;
      if (deficit > 0) {
        topic_score +=
            params_.topic.mesh_message_deliveries_weight * deficit * deficit;
      }
    }
    // P4: invalid messages (squared).
    topic_score += params_.topic.invalid_message_deliveries_weight *
                   tc.invalid_message_deliveries * tc.invalid_message_deliveries;
    total += params_.topic.topic_weight * topic_score;
  }

  // P6: IP colocation.
  if (st.has_ip) {
    const auto ip_it = peers_per_ip_.find(st.ip);
    const double count = ip_it == peers_per_ip_.end() ? 0.0 : ip_it->second;
    const double excess = count - static_cast<double>(params_.ip_colocation_threshold);
    if (excess > 0) {
      total += params_.ip_colocation_weight * excess * excess;
    }
  }
  return total;
}

}  // namespace wakurln::gossipsub
