#pragma once
// World-level topic interner. Topic identifiers are strings on the wire,
// but every per-node bookkeeping structure (peer subscription sets, mcache
// window entries) only needs topic *identity*. Interning each distinct
// topic string once per world and handing out dense 32-bit indices turns
// per-node topic storage into integers/bitmasks — the struct-of-arrays
// groundwork that makes 250k-node worlds fit in memory.
//
// One table is shared by every router and mcache of a simulated world
// (SimHarness and the scenario runner create it); a standalone router
// creates a private table, preserving the old single-node behaviour.
// The table is append-only: indices are stable for the world's lifetime.

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gossipsub/message.h"

namespace wakurln::gossipsub {

class TopicTable {
 public:
  /// Peer subscription sets are stored as 64-bit masks, so one world may
  /// carry at most this many distinct topics (checked at intern time).
  static constexpr std::uint32_t kMaxTopics = 64;

  /// Storage for all kMaxTopics names is reserved up front so name()
  /// references stay stable across concurrent intern() calls.
  TopicTable() { names_.reserve(kMaxTopics); }

  /// Index of `topic`, interning it on first sight. Thread-safe: routers
  /// on different scheduler shards share one table. Subscribing at world
  /// setup pre-interns every topic in deterministic order; a runtime
  /// intern from a shard (a remote announcement for a topic nobody
  /// subscribed at setup) is race-free but its index would depend on
  /// shard interleaving — keep topic sets setup-declared.
  std::uint32_t intern(const TopicId& topic);

  /// Index of `topic` if already interned, kNotFound otherwise. Lookup
  /// only — used on read paths that must not grow the table.
  static constexpr std::uint32_t kNotFound = 0xffffffffu;
  std::uint32_t find(const TopicId& topic) const;

  const TopicId& name(std::uint32_t idx) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.at(idx);  // reference stable: storage reserved up front
  }
  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.size();
  }

  /// Modeled resident bytes of the table (counted once per world by the
  /// harness — never per node).
  std::size_t memory_bytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<TopicId> names_;
  std::unordered_map<TopicId, std::uint32_t> index_;
};

}  // namespace wakurln::gossipsub
