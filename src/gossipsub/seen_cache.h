#pragma once
// Seen-cache for message-id deduplication, compacted for 250k-node worlds.
//
// Message ids are content hashes, so their first 8 bytes are already a
// uniformly distributed fingerprint (the same prefix MessageIdHash uses
// for bucket placement). The cache stores only that fingerprint and the
// observation time in two parallel open-addressing arrays — 16 bytes per
// slot instead of an unordered_map node (~75 bytes with its bucket array)
// — and allocates nothing until the first message arrives. A fingerprint
// collision between two distinct ids (probability 2^-64 per pair) would
// treat the second as a duplicate; the campaign byte-identity pins over
// the full scenario catalogue verify this never changes a report.

#include <cstdint>
#include <cstring>
#include <vector>

#include "gossipsub/message.h"

namespace wakurln::gossipsub {

class SeenCache {
 public:
  bool contains(const MessageId& id) const {
    if (size_ == 0) return false;
    return fps_[probe(fingerprint(id))] != 0;
  }

  /// Records `id` at time `at`; re-inserting an id refreshes its time
  /// (matching the old `seen_[id] = now` upsert).
  void insert(const MessageId& id, std::uint64_t at);

  /// Heartbeat TTL sweep: drops every entry with now - t > ttl (the exact
  /// predicate the old map-erase loop used) and shrinks the table to fit.
  void expire_older_than(std::uint64_t now, std::uint64_t ttl);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return fps_.size(); }

  /// Modeled resident bytes: the two slot arrays (exactly capacity()
  /// slots of fingerprint + time each).
  std::size_t memory_bytes() const {
    return sizeof(SeenCache) +
           fps_.capacity() * sizeof(std::uint64_t) +
           times_.capacity() * sizeof(std::uint64_t);
  }

 private:
  /// First 8 id bytes, with 0 (the empty-slot marker) remapped to 1.
  static std::uint64_t fingerprint(const MessageId& id) {
    std::uint64_t fp;
    std::memcpy(&fp, id.data(), sizeof(fp));
    return fp == 0 ? 1 : fp;
  }

  /// Index of `fp`'s slot, or of the empty slot that would receive it.
  std::size_t probe(std::uint64_t fp) const;
  void rehash(std::size_t capacity);

  std::vector<std::uint64_t> fps_;    ///< 0 = empty slot
  std::vector<std::uint64_t> times_;  ///< parallel observation times
  std::size_t size_ = 0;
};

}  // namespace wakurln::gossipsub
