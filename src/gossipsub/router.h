#pragma once
// GossipSub v1.1 router [3]: mesh overlay per topic (D / D_lo / D_hi),
// heartbeat-driven mesh maintenance, IHAVE/IWANT lazy gossip over the
// message cache, seen-cache deduplication, fanout publishing, GRAFT/PRUNE
// control traffic, per-topic message validators (the hook WAKU-RLN-RELAY
// plugs its RLN checks into) and optional peer scoring.
//
// Per-node state is stored struct-of-arrays for 250k-node worlds: peer
// subscription sets are 64-bit topic masks over a world-shared TopicTable,
// mesh/fanout/backoff sets are sorted vectors, the seen cache is a
// fingerprint table (seen_cache.h), and the peer-score tracker is only
// allocated when scoring is enabled. Parameters and the topic table are
// shared across every router of a world; a standalone router creates
// private copies.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gossipsub/mcache.h"
#include "gossipsub/message.h"
#include "gossipsub/score.h"
#include "gossipsub/seen_cache.h"
#include "gossipsub/topic_table.h"
#include "sim/network.h"

namespace wakurln::obs {
class Tracer;
}

namespace wakurln::gossipsub {

struct GossipSubParams {
  int d = 6;       ///< target mesh degree
  int d_lo = 4;    ///< lower bound before grafting
  int d_hi = 12;   ///< upper bound before pruning
  int d_lazy = 6;  ///< gossip emission degree

  sim::TimeUs heartbeat_interval = sim::kUsPerSecond;
  std::size_t mcache_len = 5;
  std::size_t mcache_gossip = 3;
  sim::TimeUs seen_ttl = 120 * sim::kUsPerSecond;
  sim::TimeUs fanout_ttl = 60 * sim::kUsPerSecond;
  /// After a PRUNE, neither side re-grafts the link for this long
  /// (GossipSub v1.1 backoff; prevents graft/prune oscillation).
  sim::TimeUs prune_backoff = 60 * sim::kUsPerSecond;
  /// Peer-exchange candidates attached to each PRUNE (0 disables PX).
  std::size_t px_peers = 6;
  /// Max new connections a pruned peer opens from one PX record.
  std::size_t px_connect = 3;
  /// Max ids requested per IWANT exchange.
  std::size_t max_iwant_ids = 500;

  bool enable_scoring = false;
  PeerScoreParams score;
};

/// Outcome of application-level message validation (libp2p semantics).
enum class Validation {
  kAccept,  ///< deliver and forward
  kReject,  ///< drop and penalise the propagation source
  kIgnore,  ///< drop silently (e.g. duplicates/out-of-window)
};

class GossipSubRouter {
 public:
  using MessageHandler = std::function<void(const GsMessage&)>;
  using Validator = std::function<Validation(sim::NodeId source, const GsMessage&)>;

  struct Stats {
    std::uint64_t delivered = 0;          ///< first-time accepted messages
    std::uint64_t duplicates = 0;         ///< seen-cache hits
    std::uint64_t rejected = 0;           ///< validator rejections
    std::uint64_t ignored = 0;            ///< validator ignores
    std::uint64_t forwarded = 0;          ///< messages relayed to mesh peers
    std::uint64_t graylisted_frames = 0;  ///< frames dropped by score
    /// Sent bytes split by class (wire model in message.h): payload =
    /// published messages incl. framing, control = everything else.
    std::uint64_t payload_bytes_sent = 0;
    std::uint64_t control_bytes_sent = 0;
  };

  /// World-shared state: every router of a simulated world points at one
  /// immutable parameter block and one topic table.
  GossipSubRouter(sim::NodeId self, sim::Network& network,
                  std::shared_ptr<const GossipSubParams> params,
                  std::shared_ptr<TopicTable> table);

  /// Standalone router with private parameters and topic table.
  GossipSubRouter(sim::NodeId self, sim::Network& network, GossipSubParams params);

  sim::NodeId id() const { return self_; }
  const GossipSubParams& params() const { return *params_; }
  const Stats& stats() const { return stats_; }
  sim::Network& network() { return network_; }
  const sim::Network& network() const { return network_; }

  /// Registers callbacks with the network and schedules the first
  /// heartbeat (staggered randomly within one interval).
  void start();

  // -- application API -------------------------------------------------
  void subscribe(const TopicId& topic);
  void unsubscribe(const TopicId& topic);
  bool subscribed(const TopicId& topic) const { return topics_.contains(topic); }

  /// Publishes payload to the topic (to mesh members, or fanout if not
  /// subscribed). Returns the message id.
  ///
  /// As in go-libp2p, the topic validator also runs on locally published
  /// messages; a rejected/ignored publish is not delivered or forwarded.
  /// `apply_validator = false` models a modified (attacker) client that
  /// skips its own validation — honest peers still validate on arrival.
  MessageId publish(const TopicId& topic, util::Bytes payload,
                    bool apply_validator = true);

  void set_message_handler(MessageHandler handler);
  void set_validator(const TopicId& topic, Validator validator);

  // -- introspection for tests/benches ---------------------------------
  std::vector<sim::NodeId> mesh_peers(const TopicId& topic) const;
  std::vector<sim::NodeId> known_peers() const;
  double peer_score(sim::NodeId peer) const;
  bool has_seen(const MessageId& id) const { return seen_.contains(id); }

  /// Declares the IP a peer is observed on (defaults to its node id).
  /// No-op unless scoring is enabled (the tracker is lazy).
  void set_peer_ip(sim::NodeId peer, std::uint32_t ip);

  /// Read access to the message cache (IWANT service window) for
  /// memory accounting.
  const MessageCache& mcache() const { return mcache_; }

  /// Modeled resident bytes of the router's bookkeeping — peer topic
  /// masks, mesh/fanout/backoff vectors, seen cache, validators
  /// (libstdc++ layouts, constants in obs/memory.h). The mcache is
  /// accounted separately via mcache().memory_bytes(); message payloads
  /// belong to the shared frame fabric; the world-shared parameter block
  /// and topic table are accounted once per world by the harness.
  std::size_t memory_bytes() const;

  /// Attaches the message-lifecycle tracer (nullptr detaches): forward
  /// events land on this router's node-id track.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct FanoutState {
    std::vector<sim::NodeId> peers;  ///< sorted
    sim::TimeUs last_publish = 0;
  };
  /// (peer, earliest re-graft time), sorted by peer.
  using BackoffEntry = std::pair<sim::NodeId, sim::TimeUs>;

  void on_peer_connected(sim::NodeId peer);
  void on_peer_disconnected(sim::NodeId peer);
  void on_frame(sim::NodeId from, const sim::Frame& frame);

  void handle_rpc(sim::NodeId from, const Rpc& rpc);
  void handle_message(sim::NodeId from, const GsMessagePtr& msg);
  void handle_graft(sim::NodeId from, const TopicId& topic, Rpc& reply);
  void handle_prune(sim::NodeId from, const ControlPrune& prune);

  /// Builds the PX candidate list for a PRUNE sent to `about_to_prune`.
  ControlPrune make_prune(const TopicId& topic, sim::NodeId about_to_prune);

  void heartbeat();
  void maintain_mesh(const TopicId& topic, std::vector<sim::NodeId>& mesh);
  void emit_gossip();

  /// Records a PRUNE (sent or received) so neither side re-grafts early.
  void set_backoff(const TopicId& topic, sim::NodeId peer);
  bool in_backoff(const TopicId& topic, sim::NodeId peer) const;

  void forward(const GsMessagePtr& msg, std::optional<sim::NodeId> exclude);
  void send_rpc(sim::NodeId to, Rpc rpc);

  /// Shares one frame (a single heap allocation) across every target that
  /// passes the connectivity and `min_score` checks; returns sends made.
  std::size_t send_rpc_shared(const std::vector<sim::NodeId>& targets, Rpc rpc,
                              double min_score);

  /// Peers subscribed to `topic`, sorted for determinism.
  std::vector<sim::NodeId> topic_peers(const TopicId& topic, double min_score) const;
  /// Samples up to n elements of `pool` without replacement.
  std::vector<sim::NodeId> sample(std::vector<sim::NodeId> pool, std::size_t n);

  double score_of(sim::NodeId peer) const;

  sim::NodeId self_;
  sim::Network& network_;
  std::shared_ptr<const GossipSubParams> params_;  ///< world-shared
  std::shared_ptr<TopicTable> table_;              ///< world-shared
  util::Rng rng_;

  /// Peer -> announced-subscription mask (bit i = topic table index i).
  std::unordered_map<sim::NodeId, std::uint64_t> peers_;
  std::set<TopicId> topics_;  ///< own subscriptions
  /// Mesh per topic, members sorted (matches the old std::set iteration).
  std::map<TopicId, std::vector<sim::NodeId>> mesh_;
  std::map<TopicId, FanoutState> fanout_;
  MessageCache mcache_;
  std::map<TopicId, std::vector<BackoffEntry>> backoff_;
  SeenCache seen_;
  std::unordered_map<TopicId, Validator> validators_;
  MessageHandler message_handler_;
  /// Allocated only when params().enable_scoring — pure relays carry a
  /// null pointer instead of an empty tracker.
  std::unique_ptr<PeerScoreTracker> score_tracker_;
  obs::Tracer* tracer_ = nullptr;
  Stats stats_;
  sim::TimerHandle heartbeat_timer_;
  bool started_ = false;
};

}  // namespace wakurln::gossipsub
