#pragma once
// Message cache ("mcache") from GossipSub: retains recent full messages in
// sliding heartbeat windows so IWANT requests can be served, and exposes
// the ids of the most recent windows for IHAVE gossip.

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gossipsub/message.h"

namespace wakurln::gossipsub {

class MessageCache {
 public:
  /// `history_len` windows retained; ids from the newest `gossip_len`
  /// windows are advertised.
  MessageCache(std::size_t history_len, std::size_t gossip_len);

  void put(std::shared_ptr<const GsMessage> msg);

  /// Full message lookup for IWANT service.
  std::shared_ptr<const GsMessage> get(const MessageId& id) const;

  /// Ids in the gossip windows for `topic`.
  std::vector<MessageId> gossip_ids(const TopicId& topic) const;

  /// Advances one heartbeat window, dropping messages older than
  /// `history_len` windows.
  void shift();

  std::size_t size() const { return by_id_.size(); }

  /// Modeled resident bytes of the cache bookkeeping: the window entries
  /// plus the by-id index (libstdc++ layouts, constants in obs/memory.h).
  /// Message payloads are shared frame buffers owned by the fabric and
  /// are not charged here.
  std::size_t memory_bytes() const;

 private:
  struct Entry {
    MessageId id;
    TopicId topic;
  };

  std::size_t history_len_;
  std::size_t gossip_len_;
  std::deque<std::vector<Entry>> windows_;
  std::unordered_map<MessageId, std::shared_ptr<const GsMessage>, MessageIdHash> by_id_;
};

}  // namespace wakurln::gossipsub
