#pragma once
// Message cache ("mcache") from GossipSub: retains recent full messages in
// sliding heartbeat windows so IWANT requests can be served, and exposes
// the ids of the most recent windows for IHAVE gossip.
//
// Window entries carry an interned topic index (a world-shared TopicTable)
// instead of a topic string, and the window deque is a lazily allocated
// ring of `history_len` slots: a node that never caches a message owns no
// window storage at all, and a busy node reuses the same slot vectors
// forever instead of reallocating one per heartbeat.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gossipsub/message.h"
#include "gossipsub/topic_table.h"

namespace wakurln::gossipsub {

class MessageCache {
 public:
  /// `history_len` windows retained; ids from the newest `gossip_len`
  /// windows are advertised. This overload creates a private topic table
  /// (standalone caches in tests/benches).
  MessageCache(std::size_t history_len, std::size_t gossip_len);

  /// World-shared topic table (what routers of a simulated world use).
  MessageCache(std::size_t history_len, std::size_t gossip_len,
               std::shared_ptr<TopicTable> table);

  void put(std::shared_ptr<const GsMessage> msg);

  /// Full message lookup for IWANT service.
  std::shared_ptr<const GsMessage> get(const MessageId& id) const;

  /// Ids in the gossip windows for `topic`.
  std::vector<MessageId> gossip_ids(const TopicId& topic) const;

  /// Advances one heartbeat window, dropping messages older than
  /// `history_len` windows.
  void shift();

  std::size_t size() const { return by_id_.size(); }

  /// Modeled resident bytes of the cache bookkeeping: the ring slot
  /// capacities plus the by-id index (libstdc++ layouts, constants in
  /// obs/memory.h). Message payloads are shared frame buffers owned by
  /// the fabric; the topic table is world-shared and accounted once by
  /// the harness. Neither is charged here.
  std::size_t memory_bytes() const;

 private:
  struct Entry {
    MessageId id;
    std::uint32_t topic;  ///< TopicTable index
  };

  /// Ring slot of logical window `w` (0 = oldest retained window).
  std::size_t slot(std::size_t w) const { return (head_ + w) % history_len_; }

  std::size_t history_len_;
  std::size_t gossip_len_;
  std::shared_ptr<TopicTable> table_;
  /// Ring of history_len window vectors; empty until the first put().
  std::vector<std::vector<Entry>> slots_;
  std::size_t head_ = 0;   ///< slot of the oldest logical window
  std::size_t count_ = 1;  ///< logical windows in use (starts with one)
  std::unordered_map<MessageId, std::shared_ptr<const GsMessage>, MessageIdHash> by_id_;
};

}  // namespace wakurln::gossipsub
