#pragma once
// Serialisation of the long-lived RLN artefacts a deployment persists
// across restarts (paper §IV lists exactly these): the 32 B identity
// secret, the local membership view, and the proof-system key material.
// All formats are versioned and reject corrupt or truncated input.

#include <optional>

#include "rln/group.h"
#include "rln/identity.h"
#include "util/bytes.h"
#include "zksnark/proof_system.h"

namespace wakurln::rln {

/// Identity <-> 32 bytes (the secret key; pk is re-derived on load).
util::Bytes save_identity(const Identity& identity);
std::optional<Identity> load_identity(std::span<const std::uint8_t> data);

/// Full group snapshot: depth, leaves (including zeroed/slashed slots).
/// Restoring replays the leaves, so the root matches bit-for-bit.
util::Bytes save_group(const RlnGroup& group);
std::optional<RlnGroup> load_group(std::span<const std::uint8_t> data);

/// CRS key material (both halves share the binding secret).
util::Bytes save_keypair(const zksnark::KeyPair& keys);
std::optional<zksnark::KeyPair> load_keypair(std::span<const std::uint8_t> data);

}  // namespace wakurln::rln
