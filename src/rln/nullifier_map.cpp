#include "rln/nullifier_map.h"

#include <algorithm>

#include "shamir/shamir.h"

namespace wakurln::rln {

namespace {
constexpr std::size_t kMinSlots = 8;
}  // namespace

NullifierMap::NullifierMap() : store_(std::make_shared<NullifierStore>()) {}

NullifierMap::NullifierMap(std::shared_ptr<NullifierStore> store)
    : store_(std::move(store)) {}

NullifierMap::~NullifierMap() {
  for (Shard& shard : shards_) store_->release(shard.records);
}

NullifierMap::Shard& NullifierMap::shard_for(std::uint64_t epoch) {
  // Hot path: the newest shard, or a brand-new one past it.
  if (!shards_.empty()) {
    if (shards_.back().epoch == epoch) return shards_.back();
    if (shards_.back().epoch < epoch) {
      shards_.push_back(Shard{epoch, store_->acquire(epoch), {}, 0});
      return shards_.back();
    }
  } else {
    shards_.push_back(Shard{epoch, store_->acquire(epoch), {}, 0});
    return shards_.back();
  }
  // Cold path: an epoch behind the newest shard (bounded by the Thr
  // acceptance window in live use, arbitrary in tests). Binary search the
  // ordered ring; insert a shard if the epoch has none yet.
  const auto it = std::lower_bound(
      shards_.begin(), shards_.end(), epoch,
      [](const Shard& s, std::uint64_t e) { return s.epoch < e; });
  if (it != shards_.end() && it->epoch == epoch) return *it;
  return *shards_.insert(it, Shard{epoch, store_->acquire(epoch), {}, 0});
}

std::size_t NullifierMap::probe(const Shard& shard,
                                const field::Fr& nullifier) const {
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t i = field::FrHash{}(nullifier)&mask;
  while (shard.slots[i] != 0) {
    const std::uint32_t rec = shard.slots[i] - 1;
    // Full key compare against the store — membership is exact, no
    // fingerprint collision risk.
    if (shard.records->nullifier_of(rec) == nullifier) return i;
    i = (i + 1) & mask;
  }
  return i;
}

void NullifierMap::grow(Shard& shard) {
  std::vector<std::uint32_t> grown(shard.slots.size() * 2, 0);
  const std::size_t grown_mask = grown.size() - 1;
  for (const std::uint32_t slot : shard.slots) {
    if (slot == 0) continue;
    std::size_t j =
        field::FrHash{}(shard.records->nullifier_of(slot - 1)) & grown_mask;
    while (grown[j] != 0) j = (j + 1) & grown_mask;
    grown[j] = slot;
  }
  shard.slots = std::move(grown);
}

NullifierMap::CheckResult NullifierMap::observe(std::uint64_t epoch,
                                                const field::Fr& nullifier,
                                                const field::Fr& x, const field::Fr& y) {
  Shard& shard = shard_for(epoch);
  if (shard.slots.empty()) shard.slots.assign(kMinSlots, 0);
  const std::size_t i = probe(shard, nullifier);
  if (shard.slots[i] == 0) {
    // First sighting on this node: intern the record (shared with every
    // other node that saw the same message) and remember which share we
    // saw first — that share is our half of any future slashing evidence.
    const std::uint32_t rec = shard.records->intern(nullifier, x, y);
    shard.slots[i] = rec + 1;
    ++shard.used;
    ++records_;
    if ((shard.used + 1) * 4 > shard.slots.size() * 3) grow(shard);
    return {Outcome::kFresh, std::nullopt};
  }
  const std::uint32_t rec = shard.slots[i] - 1;
  const field::Fr prior_x = shard.records->x_of(rec);
  if (prior_x == x) {
    // Same evaluation point: either the exact same message relayed twice
    // (y must match since y = A(x)) or a malformed variant; never slashable
    // evidence, because one point cannot reconstruct the line.
    return {Outcome::kDuplicateMessage, std::nullopt};
  }
  const auto sk = shamir::reconstruct(
      shamir::Share{prior_x, shard.records->y_of(rec)}, shamir::Share{x, y});
  return {Outcome::kDoubleSignal, sk};
}

void NullifierMap::prune_before(std::uint64_t oldest_kept_epoch) {
  while (!shards_.empty() && shards_.front().epoch < oldest_kept_epoch) {
    records_ -= shards_.front().used;
    store_->release(shards_.front().records);
    shards_.pop_front();
  }
}

std::size_t NullifierMap::memory_bytes() const {
  // Exact per-node resident model: the deque's shard headers plus each
  // shard's slot array capacity. Record contents are shared world state
  // (NullifierStore::memory_bytes, charged once per world).
  std::size_t total = sizeof(NullifierMap);
  for (const Shard& shard : shards_) {
    total += sizeof(Shard) + shard.slots.capacity() * sizeof(std::uint32_t);
  }
  return total;
}

}  // namespace wakurln::rln
