#include "rln/nullifier_map.h"

#include <algorithm>

#include "shamir/shamir.h"

namespace wakurln::rln {

NullifierMap::Shard& NullifierMap::shard_for(std::uint64_t epoch) {
  // Hot path: the newest shard, or a brand-new one past it.
  if (!shards_.empty()) {
    if (shards_.back().epoch == epoch) return shards_.back();
    if (shards_.back().epoch < epoch) {
      shards_.push_back(Shard{epoch, {}});
      return shards_.back();
    }
  } else {
    shards_.push_back(Shard{epoch, {}});
    return shards_.back();
  }
  // Cold path: an epoch behind the newest shard (bounded by the Thr
  // acceptance window in live use, arbitrary in tests). Binary search the
  // ordered ring; insert a shard if the epoch has none yet.
  const auto it = std::lower_bound(
      shards_.begin(), shards_.end(), epoch,
      [](const Shard& s, std::uint64_t e) { return s.epoch < e; });
  if (it != shards_.end() && it->epoch == epoch) return *it;
  return *shards_.insert(it, Shard{epoch, {}});
}

NullifierMap::CheckResult NullifierMap::observe(std::uint64_t epoch,
                                                const field::Fr& nullifier,
                                                const field::Fr& x, const field::Fr& y) {
  EpochRecords& records = shard_for(epoch).records;
  const auto it = records.find(nullifier);
  if (it == records.end()) {
    records.emplace(nullifier, Record{x, y});
    ++records_;
    return {Outcome::kFresh, std::nullopt};
  }
  const Record& prior = it->second;
  if (prior.x == x) {
    // Same evaluation point: either the exact same message relayed twice
    // (y must match since y = A(x)) or a malformed variant; never slashable
    // evidence, because one point cannot reconstruct the line.
    return {Outcome::kDuplicateMessage, std::nullopt};
  }
  const auto sk = shamir::reconstruct(shamir::Share{prior.x, prior.y}, shamir::Share{x, y});
  return {Outcome::kDoubleSignal, sk};
}

void NullifierMap::prune_before(std::uint64_t oldest_kept_epoch) {
  while (!shards_.empty() && shards_.front().epoch < oldest_kept_epoch) {
    records_ -= shards_.front().records.size();
    shards_.pop_front();
  }
}

std::size_t NullifierMap::memory_bytes() const {
  // Exact resident model: libstdc++ unordered_map stores one node per
  // record — hash-chain next pointer (8) + cached hash (8) + key Fr (32)
  // + Record (64) — plus the shard's live bucket array of pointers.
  constexpr std::size_t kRecordNodeBytes = 8 + 8 + 32 + 64;
  std::size_t total = sizeof(NullifierMap);
  for (const Shard& shard : shards_) {
    total += sizeof(Shard) + shard.records.bucket_count() * sizeof(void*) +
             shard.records.size() * kRecordNodeBytes;
  }
  return total;
}

}  // namespace wakurln::rln
