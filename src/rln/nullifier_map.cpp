#include "rln/nullifier_map.h"

#include "shamir/shamir.h"

namespace wakurln::rln {

NullifierMap::CheckResult NullifierMap::observe(std::uint64_t epoch,
                                                const field::Fr& nullifier,
                                                const field::Fr& x, const field::Fr& y) {
  EpochRecords& records = by_epoch_[epoch];
  const auto it = records.find(nullifier);
  if (it == records.end()) {
    records.emplace(nullifier, Record{x, y});
    return {Outcome::kFresh, std::nullopt};
  }
  const Record& prior = it->second;
  if (prior.x == x) {
    // Same evaluation point: either the exact same message relayed twice
    // (y must match since y = A(x)) or a malformed variant; never slashable
    // evidence, because one point cannot reconstruct the line.
    return {Outcome::kDuplicateMessage, std::nullopt};
  }
  const auto sk = shamir::reconstruct(shamir::Share{prior.x, prior.y}, shamir::Share{x, y});
  return {Outcome::kDoubleSignal, sk};
}

void NullifierMap::prune_before(std::uint64_t oldest_kept_epoch) {
  by_epoch_.erase(by_epoch_.begin(), by_epoch_.lower_bound(oldest_kept_epoch));
}

std::size_t NullifierMap::record_count() const {
  std::size_t n = 0;
  for (const auto& [epoch, records] : by_epoch_) n += records.size();
  return n;
}

std::size_t NullifierMap::memory_bytes() const {
  // nullifier key (32) + record (64) + unordered_map node overhead (~48).
  constexpr std::size_t kPerRecord = 32 + 64 + 48;
  constexpr std::size_t kPerEpoch = 96;  // map node + bucket array baseline
  return record_count() * kPerRecord + epoch_count() * kPerEpoch;
}

}  // namespace wakurln::rln
