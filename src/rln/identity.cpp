#include "rln/identity.h"

#include "hash/poseidon.h"

namespace wakurln::rln {

Identity Identity::generate(util::Rng& rng) {
  return from_sk(field::Fr::random(rng));
}

Identity Identity::from_sk(const field::Fr& sk) {
  return Identity{sk, hash::poseidon_hash1(sk)};
}

}  // namespace wakurln::rln
