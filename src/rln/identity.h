#pragma once
// RLN member identity: a secret key sk (random field element) and the
// public identity commitment pk = H(sk) that is registered on the
// membership contract. Both serialise to 32 bytes (paper §IV).

#include "field/fr.h"
#include "util/rng.h"

namespace wakurln::rln {

struct Identity {
  field::Fr sk;
  field::Fr pk;

  /// Samples a fresh identity.
  static Identity generate(util::Rng& rng);

  /// Rebuilds the identity (pk = H(sk)) from an existing secret.
  static Identity from_sk(const field::Fr& sk);

  bool operator==(const Identity&) const = default;
};

}  // namespace wakurln::rln
