#include "rln/signal.h"

#include "util/serde.h"

namespace wakurln::rln {

util::Bytes RlnSignal::serialize() const {
  util::ByteWriter w;
  w.put_u64(epoch);
  w.put_u64(message_index);
  w.put_raw(y.to_bytes_be());
  w.put_raw(nullifier.to_bytes_be());
  w.put_raw(root.to_bytes_be());
  w.put_raw(proof.bytes);
  return w.take();
}

std::optional<RlnSignal> RlnSignal::deserialize(std::span<const std::uint8_t> data) {
  if (data.size() != kWireSize) return std::nullopt;
  try {
    util::ByteReader r(data);
    RlnSignal s;
    s.epoch = r.get_u64();
    s.message_index = r.get_u64();
    const auto y = field::Fr::from_bytes_canonical(r.get_raw(32));
    const auto nullifier = field::Fr::from_bytes_canonical(r.get_raw(32));
    const auto root = field::Fr::from_bytes_canonical(r.get_raw(32));
    if (!y || !nullifier || !root) return std::nullopt;
    s.y = *y;
    s.nullifier = *nullifier;
    s.root = *root;
    const auto proof_bytes = r.get_array<zksnark::Proof::kSize>();
    s.proof.bytes = proof_bytes;
    return s;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace wakurln::rln
