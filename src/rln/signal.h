#pragma once
// RLN signal: the metadata a publisher attaches to every message
// (paper §II: (m, ∅, φ, [sk], π)). The share's x-coordinate is not
// transmitted — verifiers recompute x = H(m) from the payload, which also
// binds the proof to the exact message bytes.

#include <cstdint>
#include <optional>

#include "field/fr.h"
#include "util/bytes.h"
#include "zksnark/proof_system.h"

namespace wakurln::rln {

struct RlnSignal {
  std::uint64_t epoch = 0;          ///< epoch of the external nullifier ∅
  std::uint64_t message_index = 0;  ///< slot index when rate > 1 (0 in the paper's scheme)
  field::Fr y;                      ///< Shamir share value [sk]
  field::Fr nullifier;              ///< internal nullifier φ
  field::Fr root;                   ///< membership root the proof refers to
  zksnark::Proof proof;             ///< π

  /// Wire size: epoch(8) + index(8) + y(32) + nullifier(32) + root(32) + proof(128).
  static constexpr std::size_t kWireSize = 8 + 8 + 32 + 32 + 32 + zksnark::Proof::kSize;

  util::Bytes serialize() const;
  static std::optional<RlnSignal> deserialize(std::span<const std::uint8_t> data);

  bool operator==(const RlnSignal&) const = default;
};

}  // namespace wakurln::rln
