#include "rln/epoch.h"

#include <stdexcept>

#include "hash/poseidon.h"

namespace wakurln::rln {

EpochScheme::EpochScheme(std::uint64_t period_seconds, std::uint64_t max_delay_seconds)
    : period_s_(period_seconds) {
  if (period_seconds == 0) {
    throw std::invalid_argument("EpochScheme: period must be positive");
  }
  threshold_ = (max_delay_seconds + period_seconds - 1) / period_seconds;
}

std::uint64_t EpochScheme::epoch_at(std::uint64_t unix_seconds) const {
  return unix_seconds / period_s_;
}

bool EpochScheme::within_threshold(std::uint64_t message_epoch,
                                   std::uint64_t local_epoch) const {
  const std::uint64_t diff = message_epoch > local_epoch ? message_epoch - local_epoch
                                                         : local_epoch - message_epoch;
  return diff <= threshold_;
}

field::Fr EpochScheme::to_field(std::uint64_t epoch) {
  return field::Fr::from_u64(epoch);
}

field::Fr external_nullifier(std::uint64_t epoch, std::uint64_t message_index,
                             std::uint64_t messages_per_epoch) {
  if (messages_per_epoch == 0) {
    throw std::invalid_argument("external_nullifier: rate must be positive");
  }
  if (message_index >= messages_per_epoch) {
    throw std::out_of_range("external_nullifier: message index beyond rate");
  }
  if (messages_per_epoch == 1) {
    return EpochScheme::to_field(epoch);  // the paper's ∅ = epoch
  }
  return hash::poseidon_hash2(field::Fr::from_u64(epoch),
                              field::Fr::from_u64(message_index));
}

}  // namespace wakurln::rln
