#include "rln/persistence.h"

#include "util/serde.h"

namespace wakurln::rln {

namespace {
constexpr std::uint32_t kIdentityMagic = 0x524c4e31;  // "RLN1"
constexpr std::uint32_t kGroupMagic = 0x524c4e47;     // "RLNG"
constexpr std::uint32_t kKeysMagic = 0x524c4e4b;      // "RLNK"
}  // namespace

util::Bytes save_identity(const Identity& identity) {
  util::ByteWriter w;
  w.put_u32(kIdentityMagic);
  w.put_raw(identity.sk.to_bytes_be());
  return w.take();
}

std::optional<Identity> load_identity(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    if (r.get_u32() != kIdentityMagic) return std::nullopt;
    const auto sk = field::Fr::from_bytes_canonical(r.get_raw(32));
    if (!sk || !r.empty()) return std::nullopt;
    return Identity::from_sk(*sk);
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

util::Bytes save_group(const RlnGroup& group) {
  util::ByteWriter w;
  w.put_u32(kGroupMagic);
  w.put_u32(static_cast<std::uint32_t>(group.tree_depth()));
  w.put_u64(group.leaf_count());
  for (std::uint64_t i = 0; i < group.leaf_count(); ++i) {
    w.put_raw(group.tree().leaf(i).to_bytes_be());
  }
  return w.take();
}

std::optional<RlnGroup> load_group(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    if (r.get_u32() != kGroupMagic) return std::nullopt;
    const std::uint32_t depth = r.get_u32();
    if (depth < 1 || depth > 40) return std::nullopt;
    const std::uint64_t leaves = r.get_u64();
    if (leaves > (std::uint64_t{1} << depth)) return std::nullopt;
    RlnGroup group(depth);
    for (std::uint64_t i = 0; i < leaves; ++i) {
      const auto leaf = field::Fr::from_bytes_canonical(r.get_raw(32));
      if (!leaf) return std::nullopt;
      if (leaf->is_zero()) {
        // A slashed slot: append a placeholder member, then remove it so
        // the tree layout (and root) matches the original exactly.
        group.add_member(field::Fr::one());
        group.remove_member(i);
      } else {
        group.add_member(*leaf);
      }
    }
    if (!r.empty()) return std::nullopt;
    return group;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

util::Bytes save_keypair(const zksnark::KeyPair& keys) {
  util::ByteWriter w;
  w.put_u32(kKeysMagic);
  w.put_var(util::to_bytes(keys.pk.circuit_id));
  w.put_u64(keys.pk.tree_depth);
  w.put_raw(keys.pk.binding_secret);
  w.put_u64(keys.pk.simulated_size_bytes);
  w.put_u64(keys.vk.simulated_size_bytes);
  return w.take();
}

std::optional<zksnark::KeyPair> load_keypair(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    if (r.get_u32() != kKeysMagic) return std::nullopt;
    const auto id_bytes = r.get_var();
    zksnark::KeyPair keys;
    keys.pk.circuit_id.assign(id_bytes.begin(), id_bytes.end());
    keys.pk.tree_depth = r.get_u64();
    const auto secret = r.get_array<32>();
    keys.pk.binding_secret = secret;
    keys.pk.simulated_size_bytes = r.get_u64();
    keys.vk.circuit_id = keys.pk.circuit_id;
    keys.vk.tree_depth = keys.pk.tree_depth;
    keys.vk.binding_secret = secret;
    keys.vk.simulated_size_bytes = r.get_u64();
    if (!r.empty()) return std::nullopt;
    return keys;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace wakurln::rln
