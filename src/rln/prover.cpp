#include "rln/prover.h"

#include <stdexcept>

#include "hash/poseidon.h"
#include "shamir/shamir.h"

namespace wakurln::rln {

using field::Fr;

RlnProver::RlnProver(zksnark::ProvingKey proving_key, Identity identity,
                     std::uint64_t messages_per_epoch)
    : proving_key_(std::move(proving_key)),
      identity_(identity),
      messages_per_epoch_(messages_per_epoch) {
  if (messages_per_epoch_ == 0) {
    throw std::invalid_argument("RlnProver: rate must be positive");
  }
}

std::optional<RlnSignal> RlnProver::create_signal(std::span<const std::uint8_t> payload,
                                                  std::uint64_t epoch,
                                                  const RlnGroup& group,
                                                  std::uint64_t leaf_index,
                                                  util::Rng& rng,
                                                  std::uint64_t message_index) const {
  if (message_index >= messages_per_epoch_) return std::nullopt;
  if (!group.is_active(leaf_index) || group.tree().leaf(leaf_index) != identity_.pk) {
    return std::nullopt;
  }

  const Fr ext = external_nullifier(epoch, message_index, messages_per_epoch_);
  const Fr a1 = hash::poseidon_hash2(identity_.sk, ext);
  const Fr x = zksnark::RlnCircuit::message_to_x(payload);
  const shamir::Share share = shamir::make_share(identity_.sk, a1, x);

  zksnark::RlnPublicInputs pub;
  pub.root = group.root();
  pub.epoch = ext;
  pub.x = x;
  pub.y = share.y;
  pub.nullifier = hash::poseidon_hash1(a1);

  zksnark::RlnWitness witness;
  witness.sk = identity_.sk;
  witness.path = group.membership_proof(leaf_index);

  const auto proof = zksnark::MockGroth16::prove(proving_key_, witness, pub, rng);
  if (!proof) return std::nullopt;

  RlnSignal signal;
  signal.epoch = epoch;
  signal.message_index = message_index;
  signal.y = share.y;
  signal.nullifier = pub.nullifier;
  signal.root = pub.root;
  signal.proof = *proof;
  return signal;
}

RlnVerifier::RlnVerifier(zksnark::VerifyingKey verifying_key,
                         std::uint64_t messages_per_epoch)
    : verifying_key_(std::move(verifying_key)),
      prepared_(verifying_key_),
      messages_per_epoch_(messages_per_epoch) {
  if (messages_per_epoch_ == 0) {
    throw std::invalid_argument("RlnVerifier: rate must be positive");
  }
}

bool RlnVerifier::verify(std::span<const std::uint8_t> payload,
                         const RlnSignal& signal) const {
  if (signal.message_index >= messages_per_epoch_) return false;
  zksnark::RlnPublicInputs pub;
  pub.root = signal.root;
  pub.epoch =
      external_nullifier(signal.epoch, signal.message_index, messages_per_epoch_);
  pub.x = zksnark::RlnCircuit::message_to_x(payload);
  pub.y = signal.y;
  pub.nullifier = signal.nullifier;
  return zksnark::MockGroth16::verify(verifying_key_, signal.proof, pub);
}

bool RlnVerifier::verify_prepared(std::span<const std::uint8_t> payload,
                                  const RlnSignal& signal) const {
  if (signal.message_index >= messages_per_epoch_) return false;
  zksnark::RlnPublicInputs pub;
  pub.root = signal.root;
  pub.epoch =
      external_nullifier(signal.epoch, signal.message_index, messages_per_epoch_);
  pub.x = zksnark::RlnCircuit::message_to_x(payload);
  pub.y = signal.y;
  pub.nullifier = signal.nullifier;
  return prepared_.verify(signal.proof, pub);
}

}  // namespace wakurln::rln
