#pragma once
// World-shared nullifier record store. Every honest routing peer records
// the same (nullifier, x, y) evidence for every message it routes, so in
// a simulated world the record *contents* are massively duplicated across
// nodes — only the per-node membership differs (which records a node has
// seen, and which share it saw first). This store deduplicates the
// contents: one epoch-sharded arena of records per world, interned by
// (nullifier, x), with per-node NullifierMaps holding 4-byte record
// indices instead of 112-byte map nodes.
//
// Shards are reference-counted by the per-node maps that acquired them;
// when the last node prunes an epoch the shard is freed, so the shared
// arena follows the same retention window as the per-node views. A
// NullifierMap constructed without a store creates a private one,
// preserving standalone behaviour.

#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "field/fr.h"

namespace wakurln::rln {

class NullifierStore {
 public:
  /// One epoch's interned records: struct-of-arrays columns plus an
  /// open-addressing dedup table keyed by (nullifier, x).
  ///
  /// Nodes on different scheduler shards validate concurrently, so the
  /// shard carries its own reader/writer lock: intern() takes it
  /// exclusively, the record accessors take it shared and copy the value
  /// out (the column vectors may reallocate under a concurrent intern).
  /// The record SET — and therefore the final column sizes and the
  /// memory model — is independent of interleaving; only the internal
  /// record indices depend on it, and those never leave the per-node
  /// maps or cross a report boundary.
  struct Shard {
    std::uint64_t epoch = 0;
    std::uint64_t refs = 0;  ///< per-node maps holding this shard

    /// Index of the record equal to (nullifier, x), interning it (with
    /// this y) on first sight.
    std::uint32_t intern(const field::Fr& nullifier, const field::Fr& x,
                         const field::Fr& y);

    field::Fr nullifier_of(std::uint32_t rec) const {
      std::shared_lock<std::shared_mutex> lock(mu);
      return nullifiers[rec];
    }
    field::Fr x_of(std::uint32_t rec) const {
      std::shared_lock<std::shared_mutex> lock(mu);
      return xs[rec];
    }
    field::Fr y_of(std::uint32_t rec) const {
      std::shared_lock<std::shared_mutex> lock(mu);
      return ys[rec];
    }

    mutable std::shared_mutex mu;

    // Record columns; index i is one (nullifier, x, y) observation.
    std::vector<field::Fr> nullifiers;
    std::vector<field::Fr> xs;
    std::vector<field::Fr> ys;

    /// Dedup slots: record index + 1, 0 = empty. Power-of-two capacity.
    std::vector<std::uint32_t> slots;
    std::size_t used = 0;
  };

  /// Shard for `epoch` with one more reference; created if absent. The
  /// returned pointer is stable until the matching release() drops the
  /// last reference (std::map nodes do not move). Thread-safe.
  Shard* acquire(std::uint64_t epoch);

  /// Drops one reference; frees the shard when no per-node map holds it.
  /// Thread-safe.
  void release(Shard* shard);

  std::size_t shard_count() const {
    std::lock_guard<std::mutex> lock(map_mu_);
    return shards_.size();
  }

  /// Modeled resident bytes of the shared arena — counted once per world
  /// by the harness, never per node. Identical at every thread count:
  /// every container size here is determined by the record set, not the
  /// interleaving that built it.
  std::size_t memory_bytes() const;

 private:
  mutable std::mutex map_mu_;              ///< guards shards_ and refs
  std::map<std::uint64_t, Shard> shards_;  ///< by epoch
};

}  // namespace wakurln::rln
