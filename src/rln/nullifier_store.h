#pragma once
// World-shared nullifier record store. Every honest routing peer records
// the same (nullifier, x, y) evidence for every message it routes, so in
// a simulated world the record *contents* are massively duplicated across
// nodes — only the per-node membership differs (which records a node has
// seen, and which share it saw first). This store deduplicates the
// contents: one epoch-sharded arena of records per world, interned by
// (nullifier, x), with per-node NullifierMaps holding 4-byte record
// indices instead of 112-byte map nodes.
//
// Shards are reference-counted by the per-node maps that acquired them;
// when the last node prunes an epoch the shard is freed, so the shared
// arena follows the same retention window as the per-node views. A
// NullifierMap constructed without a store creates a private one,
// preserving standalone behaviour.

#include <cstdint>
#include <map>
#include <vector>

#include "field/fr.h"

namespace wakurln::rln {

class NullifierStore {
 public:
  /// One epoch's interned records: struct-of-arrays columns plus an
  /// open-addressing dedup table keyed by (nullifier, x).
  struct Shard {
    std::uint64_t epoch = 0;
    std::uint64_t refs = 0;  ///< per-node maps holding this shard

    // Record columns; index i is one (nullifier, x, y) observation.
    std::vector<field::Fr> nullifiers;
    std::vector<field::Fr> xs;
    std::vector<field::Fr> ys;

    /// Dedup slots: record index + 1, 0 = empty. Power-of-two capacity.
    std::vector<std::uint32_t> slots;
    std::size_t used = 0;

    /// Index of the record equal to (nullifier, x), interning it (with
    /// this y) on first sight.
    std::uint32_t intern(const field::Fr& nullifier, const field::Fr& x,
                         const field::Fr& y);
  };

  /// Shard for `epoch` with one more reference; created if absent. The
  /// returned pointer is stable until the matching release() drops the
  /// last reference (std::map nodes do not move).
  Shard* acquire(std::uint64_t epoch);

  /// Drops one reference; frees the shard when no per-node map holds it.
  void release(Shard* shard);

  std::size_t shard_count() const { return shards_.size(); }

  /// Modeled resident bytes of the shared arena — counted once per world
  /// by the harness, never per node.
  std::size_t memory_bytes() const;

 private:
  std::map<std::uint64_t, Shard> shards_;  ///< by epoch
};

}  // namespace wakurln::rln
