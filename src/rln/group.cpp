#include "rln/group.h"

#include <stdexcept>

#include "obs/memory.h"

namespace wakurln::rln {

RlnGroup::RlnGroup(std::size_t tree_depth) : tree_(tree_depth) {}

std::uint64_t RlnGroup::add_member(const field::Fr& pk) {
  if (pk.is_zero()) {
    throw std::invalid_argument("RlnGroup: zero is reserved for empty/deleted leaves");
  }
  const std::uint64_t index = tree_.append(pk);
  index_by_pk_[pk] = index;
  ++active_members_;
  return index;
}

std::uint64_t RlnGroup::add_members(std::span<const field::Fr> pks,
                                    std::span<field::Fr> roots_out) {
  for (const field::Fr& pk : pks) {
    if (pk.is_zero()) {
      throw std::invalid_argument("RlnGroup: zero is reserved for empty/deleted leaves");
    }
  }
  const std::uint64_t base = tree_.append_batch(pks, roots_out);
  for (std::size_t i = 0; i < pks.size(); ++i) {
    index_by_pk_[pks[i]] = base + i;
  }
  active_members_ += pks.size();
  return base;
}

void RlnGroup::remove_member(std::uint64_t index) {
  const field::Fr pk = tree_.leaf(index);
  if (pk.is_zero()) {
    throw std::out_of_range("RlnGroup: no active member at index");
  }
  tree_.update(index, field::Fr::zero());
  index_by_pk_.erase(pk);
  --active_members_;
}

std::optional<std::uint64_t> RlnGroup::index_of(const field::Fr& pk) const {
  const auto it = index_by_pk_.find(pk);
  if (it == index_by_pk_.end()) return std::nullopt;
  return it->second;
}

bool RlnGroup::is_active(std::uint64_t index) const {
  return index < tree_.size() && !tree_.leaf(index).is_zero();
}

merkle::MerkleProof RlnGroup::membership_proof(std::uint64_t index) const {
  if (!is_active(index)) {
    throw std::out_of_range("RlnGroup: no active member at index");
  }
  return tree_.prove(index);
}

std::size_t RlnGroup::memory_bytes() const {
  std::size_t total = sizeof(RlnGroup) - sizeof(merkle::MerkleTree);
  total += tree_.memory_bytes();
  total += index_by_pk_.bucket_count() * sizeof(void*);
  total += index_by_pk_.size() *
           (obs::kUnorderedNodeBytes +
            sizeof(std::pair<const field::Fr, std::uint64_t>));
  return total;
}

}  // namespace wakurln::rln
