#pragma once
// Nullifier map (paper §III): every routing peer records, for the last Thr
// epochs, the internal nullifier φ and the share (x, y) of every message it
// routed. A new message whose nullifier collides with a stored record is a
// double-signal — unless it is the *same* message again (a gossip
// duplicate), which is ignored rather than slashed. On a true double-signal
// the two distinct shares reconstruct the offender's secret key.

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "field/fr.h"

namespace wakurln::rln {

class NullifierMap {
 public:
  enum class Outcome {
    kFresh,             ///< first message for this nullifier — record and relay
    kDuplicateMessage,  ///< identical (nullifier, x): gossip duplicate, ignore
    kDoubleSignal,      ///< same nullifier, different share: rate violation
  };

  struct CheckResult {
    Outcome outcome = Outcome::kFresh;
    /// Reconstructed secret key on kDoubleSignal (slashing evidence).
    std::optional<field::Fr> breached_sk;
  };

  /// Checks (and on kFresh records) a message's nullifier evidence.
  CheckResult observe(std::uint64_t epoch, const field::Fr& nullifier,
                      const field::Fr& x, const field::Fr& y);

  /// Drops all records with epoch < `oldest_kept_epoch` (§III: older
  /// messages are invalid by default, so keeping them is pointless).
  void prune_before(std::uint64_t oldest_kept_epoch);

  std::size_t epoch_count() const { return by_epoch_.size(); }
  std::size_t record_count() const;

  /// Approximate resident memory of the records (for E13).
  std::size_t memory_bytes() const;

 private:
  struct Record {
    field::Fr x;
    field::Fr y;
  };
  using EpochRecords = std::unordered_map<field::Fr, Record, field::FrHash>;

  /// Ordered by epoch so pruning is a range erase.
  std::map<std::uint64_t, EpochRecords> by_epoch_;
};

}  // namespace wakurln::rln
