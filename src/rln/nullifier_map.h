#pragma once
// Nullifier map (paper §III): every routing peer records, for the last Thr
// epochs, the internal nullifier φ and the share (x, y) of every message it
// routed. A new message whose nullifier collides with a stored record is a
// double-signal — unless it is the *same* message again (a gossip
// duplicate), which is ignored rather than slashed. On a true double-signal
// the two distinct shares reconstruct the offender's secret key.
//
// Per node this is now a membership view over a world-shared record arena
// (NullifierStore): an epoch-indexed ring of shards, each holding an
// open-addressing table of 4-byte record indices into the store instead of
// a hash map of 112-byte record nodes. Epochs arrive near-monotonically
// (the Thr acceptance window bounds how far behind the newest shard a
// message may land), so locating a shard is a short scan from the back —
// amortised O(1) — and prune_before pops whole shards from the front,
// releasing the store shard (freed when the last node lets go).

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "field/fr.h"
#include "rln/nullifier_store.h"

namespace wakurln::rln {

class NullifierMap {
 public:
  enum class Outcome {
    kFresh,             ///< first message for this nullifier — record and relay
    kDuplicateMessage,  ///< identical (nullifier, x): gossip duplicate, ignore
    kDoubleSignal,      ///< same nullifier, different share: rate violation
  };

  struct CheckResult {
    Outcome outcome = Outcome::kFresh;
    /// Reconstructed secret key on kDoubleSignal (slashing evidence).
    std::optional<field::Fr> breached_sk;
  };

  /// Standalone map with a private record store.
  NullifierMap();
  /// Membership view over a world-shared record store.
  explicit NullifierMap(std::shared_ptr<NullifierStore> store);
  ~NullifierMap();

  NullifierMap(const NullifierMap&) = delete;
  NullifierMap& operator=(const NullifierMap&) = delete;

  /// Checks (and on kFresh records) a message's nullifier evidence.
  CheckResult observe(std::uint64_t epoch, const field::Fr& nullifier,
                      const field::Fr& x, const field::Fr& y);

  /// Drops all records with epoch < `oldest_kept_epoch` (§III: older
  /// messages are invalid by default, so keeping them is pointless).
  /// Amortised O(1): pops whole shards off the ring's front.
  void prune_before(std::uint64_t oldest_kept_epoch);

  /// Epochs currently holding records (= resident shards).
  std::size_t epoch_count() const { return shards_.size(); }
  /// Records this node holds across all shards; O(1).
  std::size_t record_count() const { return records_; }

  /// Resident memory of this node's view (for E13): container headers and
  /// each shard's index table. The record contents live in the shared
  /// store — accounted once per world via store()->memory_bytes().
  std::size_t memory_bytes() const;

  const std::shared_ptr<NullifierStore>& store() const { return store_; }

 private:
  struct Shard {
    std::uint64_t epoch = 0;
    NullifierStore::Shard* records = nullptr;  ///< acquired store shard
    /// Open-addressing index table keyed by nullifier: store record
    /// index + 1, 0 = empty. Power-of-two capacity.
    std::vector<std::uint32_t> slots;
    std::size_t used = 0;
  };

  /// Shard for `epoch`, created in epoch order if absent.
  Shard& shard_for(std::uint64_t epoch);
  /// Slot holding a record whose nullifier equals `nullifier`, or the
  /// empty slot that would receive it.
  std::size_t probe(const Shard& shard, const field::Fr& nullifier) const;
  void grow(Shard& shard);

  std::shared_ptr<NullifierStore> store_;
  /// Ring of shards, strictly ascending by epoch.
  std::deque<Shard> shards_;
  std::size_t records_ = 0;
};

}  // namespace wakurln::rln
