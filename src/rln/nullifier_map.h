#pragma once
// Nullifier map (paper §III): every routing peer records, for the last Thr
// epochs, the internal nullifier φ and the share (x, y) of every message it
// routed. A new message whose nullifier collides with a stored record is a
// double-signal — unless it is the *same* message again (a gossip
// duplicate), which is ignored rather than slashed. On a true double-signal
// the two distinct shares reconstruct the offender's secret key.
//
// Storage is an epoch-indexed ring of shards: a deque ordered by epoch,
// one hash shard per observed epoch. Epochs arrive near-monotonically
// (the Thr acceptance window bounds how far behind the newest shard a
// message may land), so locating a shard is a short scan from the back —
// amortised O(1) — and prune_before pops whole shards from the front in
// O(shards dropped). record_count is maintained incrementally and
// memory_bytes models resident bytes exactly from live shard state
// (bucket arrays included) instead of a flat per-record guess.

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "field/fr.h"

namespace wakurln::rln {

class NullifierMap {
 public:
  enum class Outcome {
    kFresh,             ///< first message for this nullifier — record and relay
    kDuplicateMessage,  ///< identical (nullifier, x): gossip duplicate, ignore
    kDoubleSignal,      ///< same nullifier, different share: rate violation
  };

  struct CheckResult {
    Outcome outcome = Outcome::kFresh;
    /// Reconstructed secret key on kDoubleSignal (slashing evidence).
    std::optional<field::Fr> breached_sk;
  };

  /// Checks (and on kFresh records) a message's nullifier evidence.
  CheckResult observe(std::uint64_t epoch, const field::Fr& nullifier,
                      const field::Fr& x, const field::Fr& y);

  /// Drops all records with epoch < `oldest_kept_epoch` (§III: older
  /// messages are invalid by default, so keeping them is pointless).
  /// Amortised O(1): pops whole shards off the ring's front.
  void prune_before(std::uint64_t oldest_kept_epoch);

  /// Epochs currently holding records (= resident shards).
  std::size_t epoch_count() const { return shards_.size(); }
  /// Total records across all shards; O(1).
  std::size_t record_count() const { return records_; }

  /// Resident memory of the map (for E13): container headers, each
  /// shard's live bucket array, and one hash node per record.
  std::size_t memory_bytes() const;

 private:
  struct Record {
    field::Fr x;
    field::Fr y;
  };
  using EpochRecords = std::unordered_map<field::Fr, Record, field::FrHash>;

  struct Shard {
    std::uint64_t epoch = 0;
    EpochRecords records;
  };

  /// Shard for `epoch`, created in epoch order if absent.
  Shard& shard_for(std::uint64_t epoch);

  /// Ring of shards, strictly ascending by epoch.
  std::deque<Shard> shards_;
  std::size_t records_ = 0;
};

}  // namespace wakurln::rln
