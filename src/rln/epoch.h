#pragma once
// Epoch arithmetic (paper §III): the external nullifier is the epoch,
// defined as the number of T-second intervals elapsed since the Unix
// epoch. Routing peers accept a message only if its epoch is within
// Thr = D / T of their local epoch, where D is the maximum network delay.

#include <cstdint>

#include "field/fr.h"

namespace wakurln::rln {

class EpochScheme {
 public:
  /// `period_seconds` is T; `max_delay_seconds` is D.
  EpochScheme(std::uint64_t period_seconds, std::uint64_t max_delay_seconds);

  std::uint64_t period_seconds() const { return period_s_; }

  /// Epoch index for an absolute time (seconds since Unix epoch).
  std::uint64_t epoch_at(std::uint64_t unix_seconds) const;

  /// Thr = ceil(D / T): the acceptance window in epochs.
  std::uint64_t threshold() const { return threshold_; }

  /// |message_epoch - local_epoch| <= Thr (both directions: §III drops
  /// both stale *and* future-dated messages).
  bool within_threshold(std::uint64_t message_epoch, std::uint64_t local_epoch) const;

  /// Embeds the epoch index into the field for circuit/public-input use.
  static field::Fr to_field(std::uint64_t epoch);

 private:
  std::uint64_t period_s_;
  std::uint64_t threshold_;
};

/// External nullifier for a message slot (extension of the paper's
/// one-per-epoch scheme to a rate of `messages_per_epoch`, in the spirit
/// of RLN-v2 user message limits). With the default rate of 1 this is the
/// plain epoch embedding, exactly the paper's construction; for k > 1 each
/// (epoch, index < k) pair is an independent "voting booth", so a member
/// may send k messages per epoch and double-use of any single slot still
/// leaks the key.
field::Fr external_nullifier(std::uint64_t epoch, std::uint64_t message_index,
                             std::uint64_t messages_per_epoch);

}  // namespace wakurln::rln
