#pragma once
// Signal creation (publisher side) and verification (routing-peer side)
// for RLN, wiring the circuit, Shamir shares and the proof system together.

#include <optional>
#include <span>

#include "rln/epoch.h"
#include "rln/group.h"
#include "rln/identity.h"
#include "rln/signal.h"
#include "util/rng.h"
#include "zksnark/proof_system.h"

namespace wakurln::rln {

/// Publisher-side signal generation. `messages_per_epoch` (default 1: the
/// paper's scheme) is a protocol-wide constant that must match the
/// verifiers'.
class RlnProver {
 public:
  RlnProver(zksnark::ProvingKey proving_key, Identity identity,
            std::uint64_t messages_per_epoch = 1);

  const Identity& identity() const { return identity_; }
  std::uint64_t messages_per_epoch() const { return messages_per_epoch_; }

  /// Builds the full signal for `payload` in `epoch` (slot `message_index`
  /// when the rate is > 1), proving membership at `leaf_index` of `group`.
  /// Returns nullopt if the identity is not the active member at that
  /// index (e.g. it was slashed) or the slot index is out of range.
  std::optional<RlnSignal> create_signal(std::span<const std::uint8_t> payload,
                                         std::uint64_t epoch, const RlnGroup& group,
                                         std::uint64_t leaf_index, util::Rng& rng,
                                         std::uint64_t message_index = 0) const;

 private:
  zksnark::ProvingKey proving_key_;
  Identity identity_;
  std::uint64_t messages_per_epoch_;
};

/// Routing-peer-side signal verification (the zkSNARK + binding checks;
/// epoch-window and double-signal policy live in the waku layer).
class RlnVerifier {
 public:
  explicit RlnVerifier(zksnark::VerifyingKey verifying_key,
                       std::uint64_t messages_per_epoch = 1);

  /// True iff the signal's slot index is within the rate and the proof
  /// verifies for (root, ∅(epoch, index), H(payload), y, nullifier).
  bool verify(std::span<const std::uint8_t> payload, const RlnSignal& signal) const;

  /// Identical verdict bit-for-bit (pinned by tests/zksnark_test.cpp),
  /// through the allocation-free PreparedVerifier with precomputed HMAC
  /// midstates — the verify path the relay's batched-crypto mode runs.
  bool verify_prepared(std::span<const std::uint8_t> payload,
                       const RlnSignal& signal) const;

 private:
  zksnark::VerifyingKey verifying_key_;
  zksnark::PreparedVerifier prepared_;
  std::uint64_t messages_per_epoch_;
};

}  // namespace wakurln::rln
