#include "rln/nullifier_store.h"

#include "obs/memory.h"
#include "util/check.h"

namespace wakurln::rln {

namespace {

constexpr std::size_t kMinSlots = 16;

std::size_t record_hash(const field::Fr& nullifier, const field::Fr& x) {
  const field::FrHash h;
  return h(nullifier) * 0x9e3779b97f4a7c15ULL ^ h(x);
}

}  // namespace

std::uint32_t NullifierStore::Shard::intern(const field::Fr& nullifier,
                                            const field::Fr& x, const field::Fr& y) {
  std::unique_lock<std::shared_mutex> lock(mu);
  if (slots.empty()) slots.assign(kMinSlots, 0);
  const std::size_t mask = slots.size() - 1;
  std::size_t i = record_hash(nullifier, x) & mask;
  while (slots[i] != 0) {
    const std::uint32_t rec = slots[i] - 1;
    if (nullifiers[rec] == nullifier && xs[rec] == x) return rec;
    i = (i + 1) & mask;
  }
  WAKURLN_CHECK_MSG(nullifiers.size() < 0xffffffffu,
                    "NullifierStore: shard record index overflow");
  const auto idx = static_cast<std::uint32_t>(nullifiers.size());
  nullifiers.push_back(nullifier);
  xs.push_back(x);
  ys.push_back(y);
  slots[i] = idx + 1;
  ++used;
  if (used * 4 > slots.size() * 3) {
    std::vector<std::uint32_t> grown(slots.size() * 2, 0);
    const std::size_t grown_mask = grown.size() - 1;
    for (const std::uint32_t slot : slots) {
      if (slot == 0) continue;
      const std::uint32_t rec = slot - 1;
      std::size_t j = record_hash(nullifiers[rec], xs[rec]) & grown_mask;
      while (grown[j] != 0) j = (j + 1) & grown_mask;
      grown[j] = slot;
    }
    slots = std::move(grown);
  }
  return idx;
}

NullifierStore::Shard* NullifierStore::acquire(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(map_mu_);
  Shard& shard = shards_[epoch];
  shard.epoch = epoch;
  ++shard.refs;
  return &shard;
}

void NullifierStore::release(Shard* shard) {
  std::lock_guard<std::mutex> lock(map_mu_);
  WAKURLN_CHECK_MSG(shard != nullptr && shard->refs > 0,
                    "NullifierStore: release without matching acquire");
  if (--shard->refs == 0) shards_.erase(shard->epoch);
}

std::size_t NullifierStore::memory_bytes() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  std::size_t total = sizeof(NullifierStore);
  for (const auto& [epoch, shard] : shards_) {
    (void)epoch;
    std::shared_lock<std::shared_mutex> shard_lock(shard.mu);
    total += obs::kTreeNodeBytes + sizeof(std::pair<const std::uint64_t, Shard>);
    total += (shard.nullifiers.capacity() + shard.xs.capacity() +
              shard.ys.capacity()) *
             sizeof(field::Fr);
    total += shard.slots.capacity() * sizeof(std::uint32_t);
  }
  return total;
}

}  // namespace wakurln::rln
