#pragma once
// Local (off-chain) view of the RLN membership group — the design choice
// of §III: the contract stores only the ordered pk list, and every peer
// maintains the Merkle tree itself, kept in sync via contract events.

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "field/fr.h"
#include "merkle/merkle_tree.h"

namespace wakurln::rln {

/// Membership tree plus pk → leaf-index bookkeeping.
class RlnGroup {
 public:
  explicit RlnGroup(std::size_t tree_depth);

  std::size_t tree_depth() const { return tree_.depth(); }
  std::uint64_t member_count() const { return active_members_; }
  std::uint64_t leaf_count() const { return tree_.size(); }

  /// Inserts a member commitment; returns its leaf index.
  std::uint64_t add_member(const field::Fr& pk);

  /// Inserts a run of member commitments through the tree's amortised
  /// batch append; returns the leaf index of the first. If `roots_out`
  /// is non-empty it must hold pks.size() slots and receives the tree
  /// root after each individual insertion, bit-identical to calling
  /// add_member in a loop (as is all bookkeeping).
  std::uint64_t add_members(std::span<const field::Fr> pks,
                            std::span<field::Fr> roots_out = {});

  /// Deletes the member at `index` by zeroing its leaf (slashing).
  void remove_member(std::uint64_t index);

  /// Leaf index of `pk`, if this exact commitment is an active member.
  std::optional<std::uint64_t> index_of(const field::Fr& pk) const;

  bool is_active(std::uint64_t index) const;

  field::Fr root() const { return tree_.root(); }

  /// Membership path for the member at `index`.
  merkle::MerkleProof membership_proof(std::uint64_t index) const;

  /// Direct tree access for storage experiments.
  const merkle::MerkleTree& tree() const { return tree_; }

  /// Modeled resident bytes of the group view: the Merkle tree plus the
  /// pk → index lookup (libstdc++ layout, constants in obs/memory.h).
  std::size_t memory_bytes() const;

 private:
  merkle::MerkleTree tree_;
  std::unordered_map<field::Fr, std::uint64_t, field::FrHash> index_by_pk_;
  std::uint64_t active_members_ = 0;
};

}  // namespace wakurln::rln
