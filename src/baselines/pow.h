#pragma once
// Proof-of-Work spam pricing (Whisper / EIP-627 style, paper ref [2]) —
// the first baseline of §I. A sender grinds a nonce until
// SHA-256(nonce || payload) has `difficulty_bits` leading zero bits;
// routers verify with a single hash and drop under-priced messages.
//
// The paper's argument, reproduced in bench_device_overhead and
// bench_spam_protection: at a difficulty low enough for phones, GPU rigs
// spam for free; at a difficulty high enough to price out rigs, phones
// cannot publish at all. RLN costs neither side meaningful computation and
// prices spam with stake instead.

#include <cstdint>
#include <optional>

#include "gossipsub/router.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "zksnark/cost_model.h"

namespace wakurln::baselines {

/// Number of leading zero bits of a 32-byte digest.
int leading_zero_bits(std::span<const std::uint8_t> digest);

/// A PoW-sealed message: nonce(8 LE) || payload.
struct PowEnvelope {
  std::uint64_t nonce = 0;
  util::Bytes payload;

  util::Bytes serialize() const;
  static std::optional<PowEnvelope> deserialize(std::span<const std::uint8_t> data);
};

/// Grinds a real nonce (use small difficulties in tests; cost is ~2^bits).
PowEnvelope pow_seal(util::Bytes payload, int difficulty_bits);

/// Verifies the seal with one hash.
bool pow_verify(const PowEnvelope& envelope, int difficulty_bits);

/// Expected number of hash evaluations to seal at `difficulty_bits`.
double expected_hashes(int difficulty_bits);

/// Expected wall-clock sealing time on a device class.
double expected_seal_seconds(int difficulty_bits, const zksnark::DeviceProfile& device);

/// Samples an actual hash count (geometric distribution) without grinding —
/// used by the network benches so high difficulties stay simulatable.
std::uint64_t sampled_seal_hashes(int difficulty_bits, util::Rng& rng);

/// GossipSub validator enforcing the difficulty on a topic.
gossipsub::GossipSubRouter::Validator make_pow_validator(int difficulty_bits);

}  // namespace wakurln::baselines
