#include "baselines/pow.h"

#include <cmath>

#include "hash/sha256.h"
#include "util/serde.h"

namespace wakurln::baselines {

int leading_zero_bits(std::span<const std::uint8_t> digest) {
  int bits = 0;
  for (std::uint8_t byte : digest) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    for (int b = 7; b >= 0; --b) {
      if ((byte >> b) & 1) return bits;
      ++bits;
    }
  }
  return bits;
}

util::Bytes PowEnvelope::serialize() const {
  util::ByteWriter w;
  w.put_u64(nonce);
  w.put_raw(payload);
  return w.take();
}

std::optional<PowEnvelope> PowEnvelope::deserialize(std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  try {
    util::ByteReader r(data);
    PowEnvelope env;
    env.nonce = r.get_u64();
    const auto rest = r.get_raw(r.remaining());
    env.payload.assign(rest.begin(), rest.end());
    return env;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

namespace {
hash::Digest seal_digest(const PowEnvelope& env) {
  util::ByteWriter w;
  w.put_u64(env.nonce);
  w.put_raw(env.payload);
  return hash::Sha256::digest(w.data());
}
}  // namespace

PowEnvelope pow_seal(util::Bytes payload, int difficulty_bits) {
  PowEnvelope env;
  env.payload = std::move(payload);
  while (leading_zero_bits(seal_digest(env)) < difficulty_bits) {
    ++env.nonce;
  }
  return env;
}

bool pow_verify(const PowEnvelope& envelope, int difficulty_bits) {
  return leading_zero_bits(seal_digest(envelope)) >= difficulty_bits;
}

double expected_hashes(int difficulty_bits) {
  return std::pow(2.0, difficulty_bits);
}

double expected_seal_seconds(int difficulty_bits,
                             const zksnark::DeviceProfile& device) {
  return expected_hashes(difficulty_bits) / device.hashes_per_second;
}

std::uint64_t sampled_seal_hashes(int difficulty_bits, util::Rng& rng) {
  // Geometric with success probability p = 2^-bits, sampled via the
  // inverse-CDF of the exponential approximation.
  const double mean = expected_hashes(difficulty_bits);
  const double sample = rng.exponential(mean);
  return sample < 1.0 ? 1 : static_cast<std::uint64_t>(sample);
}

gossipsub::GossipSubRouter::Validator make_pow_validator(int difficulty_bits) {
  return [difficulty_bits](sim::NodeId, const gossipsub::GsMessage& msg) {
    const auto env = PowEnvelope::deserialize(msg.data);
    if (!env || !pow_verify(*env, difficulty_bits)) {
      return gossipsub::Validation::kReject;
    }
    return gossipsub::Validation::kAccept;
  };
}

}  // namespace wakurln::baselines
