#pragma once
// EVM-like gas schedule used by the simulated chain. Values follow the
// post-Berlin Ethereum schedule closely enough for the paper's relative
// claims (§III: off-chain tree storage makes registration O(1) and an
// order of magnitude cheaper in gas than on-chain tree maintenance).

#include <cstdint>

namespace wakurln::eth {

struct GasSchedule {
  /// Base cost of any transaction.
  std::uint64_t tx_base = 21'000;
  /// Per non-zero calldata byte.
  std::uint64_t calldata_byte = 16;
  /// Writing a storage slot from zero to non-zero.
  std::uint64_t sstore_set = 20'000;
  /// Updating a non-zero storage slot.
  std::uint64_t sstore_update = 5'000;
  /// Cold storage read.
  std::uint64_t sload = 2'100;
  /// Log base + per topic + per byte.
  std::uint64_t log_base = 375;
  std::uint64_t log_topic = 375;
  std::uint64_t log_byte = 8;
  /// One Poseidon (t=3) evaluation implemented in EVM bytecode. Algebraic
  /// hashes cost tens of thousands of gas on-chain — the reason the paper
  /// moves the tree off-chain. (circomlib-style on-chain Poseidon costs
  /// ~30–50k gas; we use a mid-range figure.)
  std::uint64_t poseidon_eval = 40'000;

  static const GasSchedule& standard();
};

/// Accumulates gas within one transaction.
class GasMeter {
 public:
  void charge(std::uint64_t amount) { used_ += amount; }
  std::uint64_t used() const { return used_; }

 private:
  std::uint64_t used_ = 0;
};

}  // namespace wakurln::eth
