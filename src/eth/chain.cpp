#include "eth/chain.h"

#include <stdexcept>

namespace wakurln::eth {

TxContext::TxContext(Chain& chain, Address from, std::uint64_t value,
                     std::uint64_t calldata_bytes)
    : chain_(chain), from_(from), value_(value) {
  const GasSchedule& g = chain.config().gas;
  gas_.charge(g.tx_base + calldata_bytes * g.calldata_byte);
}

void TxContext::emit(ContractEvent event) {
  events_.push_back(std::move(event));
}

void TxContext::revert(std::string reason) {
  error_ = std::move(reason);
}

Chain::Chain(Config config) : config_(config) {
  if (config_.block_time_seconds == 0) {
    throw std::invalid_argument("Chain: block time must be positive");
  }
}

Address Chain::allocate_contract_address() {
  return next_contract_address_++;
}

std::uint64_t Chain::submit(Address from, std::uint64_t value,
                            std::uint64_t calldata_bytes,
                            std::function<void(TxContext&)> call,
                            std::uint64_t now_seconds) {
  const std::uint64_t id = next_tx_id_++;
  pending_.push_back(PendingTx{id, from, value, calldata_bytes, std::move(call), now_seconds});
  receipts_.push_back(Receipt{});  // placeholder until mined
  return id;
}

const Block& Chain::mine_block(std::uint64_t timestamp) {
  if (!blocks_.empty() && timestamp < blocks_.back().timestamp) {
    throw std::invalid_argument("Chain: block timestamps must be monotonic");
  }
  Block block;
  block.number = blocks_.size() + 1;
  block.timestamp = timestamp;

  std::vector<ContractEvent> sealed_events;
  for (PendingTx& tx : pending_) {
    TxContext ctx(*this, tx.from, tx.value, tx.calldata_bytes);
    tx.call(ctx);

    Receipt receipt;
    receipt.tx_id = tx.id;
    receipt.success = !ctx.reverted();
    receipt.error = ctx.error();
    receipt.gas_used = ctx.gas().used();
    receipt.block_number = block.number;
    receipt.block_timestamp = timestamp;
    receipt.submitted_at = tx.submitted_at;
    block.gas_used += receipt.gas_used;

    if (receipt.success) {
      for (const auto& ev : ctx.events()) sealed_events.push_back(ev);
    }
    receipts_[tx.id - 1] = receipt;
    block.receipts.push_back(std::move(receipt));
  }
  pending_.clear();
  blocks_.push_back(std::move(block));

  const Block& sealed = blocks_.back();
  for (const auto& ev : sealed_events) {
    for (const auto& handler : event_handlers_) handler(ev, sealed);
  }
  for (const auto& handler : block_handlers_) handler(sealed);
  return sealed;
}

const Receipt* Chain::receipt(std::uint64_t tx_id) const {
  if (tx_id == 0 || tx_id > receipts_.size()) return nullptr;
  const Receipt& r = receipts_[tx_id - 1];
  return r.tx_id == 0 ? nullptr : &r;
}

void Chain::subscribe_events(EventHandler handler) {
  event_handlers_.push_back(std::move(handler));
}

void Chain::subscribe_blocks(BlockHandler handler) {
  block_handlers_.push_back(std::move(handler));
}

}  // namespace wakurln::eth
