#include "eth/ledger.h"

namespace wakurln::eth {

void Ledger::mint(Address account, std::uint64_t amount) {
  balances_[account] += amount;
}

std::uint64_t Ledger::balance_of(Address account) const {
  const auto it = balances_.find(account);
  return it == balances_.end() ? 0 : it->second;
}

bool Ledger::transfer(Address from, Address to, std::uint64_t amount) {
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) return false;
  it->second -= amount;
  balances_[to] += amount;
  return true;
}

}  // namespace wakurln::eth
