#pragma once
// Account balances for the simulated chain. Address 0 is the burn address:
// funds sent there are provably destroyed (the paper's "a portion of the
// staked fund of the deleted member is burnt").

#include <cstdint>
#include <unordered_map>

namespace wakurln::eth {

using Address = std::uint64_t;

/// Funds sent here are burnt.
inline constexpr Address kBurnAddress = 0;

class Ledger {
 public:
  /// Credits `amount` wei to `account` out of thin air (test/genesis use).
  void mint(Address account, std::uint64_t amount);

  std::uint64_t balance_of(Address account) const;

  /// Moves funds; returns false (no effect) on insufficient balance.
  [[nodiscard]] bool transfer(Address from, Address to, std::uint64_t amount);

  /// Total ever sent to the burn address.
  std::uint64_t burnt_total() const { return balance_of(kBurnAddress); }

 private:
  std::unordered_map<Address, std::uint64_t> balances_;
};

}  // namespace wakurln::eth
