#include "eth/gas.h"

namespace wakurln::eth {

const GasSchedule& GasSchedule::standard() {
  static const GasSchedule schedule{};
  return schedule;
}

}  // namespace wakurln::eth
