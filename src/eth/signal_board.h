#pragma once
// On-chain signalling comparator (the original RLN deployment model the
// paper argues against in §III): messages are posted to the contract and
// become visible to the network only once mined. bench_propagation pits
// this against gossip distribution.

#include <cstdint>
#include <vector>

#include "eth/chain.h"

namespace wakurln::eth {

class SignalBoardContract {
 public:
  explicit SignalBoardContract(Chain& chain);

  Address address() const { return address_; }

  /// Contract entry point: stores a payload of `payload_bytes` on-chain.
  /// Returns the signal id.
  std::uint64_t post(TxContext& ctx, std::uint64_t payload_bytes);

  std::uint64_t signal_count() const { return next_signal_id_; }

  /// Calldata size for a payload of n bytes (selector + length + data).
  static std::uint64_t calldata_bytes(std::uint64_t payload_bytes) {
    return 4 + 32 + payload_bytes;
  }

 private:
  Chain& chain_;
  Address address_;
  std::uint64_t next_signal_id_ = 0;
};

}  // namespace wakurln::eth
