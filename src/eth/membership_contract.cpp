#include "eth/membership_contract.h"

#include "hash/poseidon.h"

namespace wakurln::eth {

MembershipContract::MembershipContract(Chain& chain, MembershipConfig config)
    : chain_(chain), config_(config), address_(chain.allocate_contract_address()) {}

void MembershipContract::register_member(TxContext& ctx, const field::Fr& pk) {
  const GasSchedule& g = chain_.config().gas;
  if (pk.is_zero()) {
    ctx.revert("zero commitment");
    return;
  }
  if (ctx.value() != config_.stake_wei) {
    ctx.revert("stake mismatch");
    return;
  }
  ctx.gas().charge(g.sload);  // read duplicate-registration guard
  if (index_by_pk_.contains(pk)) {
    ctx.revert("already registered");
    return;
  }
  const std::uint64_t capacity = std::uint64_t{1} << config_.tree_depth;
  if (pks_.size() >= capacity) {
    ctx.revert("group full");
    return;
  }
  if (!ctx.chain().ledger().transfer(ctx.from(), address_, ctx.value())) {
    ctx.revert("insufficient balance");
    return;
  }

  const std::uint64_t index = pks_.size();
  pks_.push_back(pk);
  index_by_pk_[pk] = index;
  ++active_members_;

  on_register_storage(ctx, pk, index);

  // MemberRegistered(pk, index) log: 2 topics + 64 data bytes.
  ctx.gas().charge(g.log_base + 2 * g.log_topic + 64 * g.log_byte);
  ctx.emit(MemberRegistered{pk, index});
}

void MembershipContract::slash(TxContext& ctx, const field::Fr& sk) {
  const GasSchedule& g = chain_.config().gas;
  // The contract recomputes pk = H(sk) on-chain to validate the evidence.
  ctx.gas().charge(g.poseidon_eval);
  const field::Fr pk = hash::poseidon_hash1(sk);

  ctx.gas().charge(g.sload);  // membership lookup
  const auto it = index_by_pk_.find(pk);
  if (it == index_by_pk_.end()) {
    ctx.revert("not a member");
    return;
  }
  const std::uint64_t index = it->second;

  // Remove the member.
  pks_[index] = field::Fr::zero();
  index_by_pk_.erase(it);
  --active_members_;
  on_slash_storage(ctx, index);

  // Split the stake: burn a portion, reward the slasher with the rest.
  const auto burnt =
      static_cast<std::uint64_t>(static_cast<double>(config_.stake_wei) * config_.burn_fraction);
  const std::uint64_t reward = config_.stake_wei - burnt;
  // The contract always holds the member's stake at this point.
  (void)ctx.chain().ledger().transfer(address_, kBurnAddress, burnt);
  (void)ctx.chain().ledger().transfer(address_, ctx.from(), reward);

  ctx.gas().charge(g.log_base + 2 * g.log_topic + 96 * g.log_byte);
  ctx.emit(MemberSlashed{pk, index, ctx.from(), burnt, reward});
}

bool MembershipContract::is_active(const field::Fr& pk) const {
  return index_by_pk_.contains(pk);
}

void RegistryListContract::on_register_storage(TxContext& ctx, const field::Fr& pk,
                                               std::uint64_t index) {
  (void)pk;
  (void)index;
  const GasSchedule& g = chain_.config().gas;
  // One fresh slot for the pk, one counter update. Constant — the paper's
  // design goal for off-chain tree maintenance.
  ctx.gas().charge(g.sstore_set + g.sstore_update);
}

void RegistryListContract::on_slash_storage(TxContext& ctx, std::uint64_t index) {
  (void)index;
  const GasSchedule& g = chain_.config().gas;
  // Zero the pk slot. Constant.
  ctx.gas().charge(g.sstore_update);
}

OnChainTreeContract::OnChainTreeContract(Chain& chain, MembershipConfig config)
    : MembershipContract(chain, config), tree_(config.tree_depth) {}

void OnChainTreeContract::charge_path_update(TxContext& ctx) {
  const GasSchedule& g = chain_.config().gas;
  for (std::size_t level = 0; level < config_.tree_depth; ++level) {
    // Read the sibling, hash in EVM, write the parent.
    ctx.gas().charge(g.sload + g.poseidon_eval + g.sstore_update);
  }
}

void OnChainTreeContract::on_register_storage(TxContext& ctx, const field::Fr& pk,
                                              std::uint64_t index) {
  (void)index;
  const GasSchedule& g = chain_.config().gas;
  ctx.gas().charge(g.sstore_set);  // the leaf itself
  charge_path_update(ctx);         // O(depth) node rewrites + hashes
  tree_.append(pk);
}

void OnChainTreeContract::on_slash_storage(TxContext& ctx, std::uint64_t index) {
  const GasSchedule& g = chain_.config().gas;
  ctx.gas().charge(g.sstore_update);  // zero the leaf
  charge_path_update(ctx);
  tree_.update(index, field::Fr::zero());
}

}  // namespace wakurln::eth
