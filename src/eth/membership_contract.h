#pragma once
// Membership contracts. Two interchangeable implementations:
//
//  * RegistryListContract — the paper's design (§III): the contract keeps
//    only an ordered list of public keys; the Merkle tree lives off-chain
//    with the peers. Registration and deletion are O(1) storage writes.
//
//  * OnChainTreeContract — the originally proposed RLN construction
//    (§II/§III): the contract maintains the whole membership Merkle tree
//    in storage, paying O(depth) storage writes *and* O(depth) on-chain
//    Poseidon evaluations per registration/deletion.
//
// bench_gas and bench_membership_ops reproduce the paper's
// "order of magnitude" gas claim by diffing the two.
//
// Both enforce staking (join requires `stake_wei`) and slashing: anyone who
// submits a member's secret key gets that member removed; a fraction of the
// stake is burnt and the rest paid to the slasher (§II).

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "eth/chain.h"
#include "field/fr.h"
#include "merkle/merkle_tree.h"

namespace wakurln::eth {

/// Common staking/slashing parameters.
struct MembershipConfig {
  std::size_t tree_depth = 20;
  /// Required deposit per member (the paper's `v` Eth).
  std::uint64_t stake_wei = 1'000'000;
  /// Fraction of the stake burnt on slashing; the rest rewards the slasher.
  double burn_fraction = 0.5;
};

/// Interface shared by both contract variants.
class MembershipContract {
 public:
  explicit MembershipContract(Chain& chain, MembershipConfig config);
  virtual ~MembershipContract() = default;

  Address address() const { return address_; }
  const MembershipConfig& config() const { return config_; }
  std::uint64_t member_count() const { return active_members_; }
  std::uint64_t registered_total() const { return static_cast<std::uint64_t>(pks_.size()); }

  /// Contract entry point: registers `pk`, staking the tx value.
  /// Called from inside a Chain transaction.
  void register_member(TxContext& ctx, const field::Fr& pk);

  /// Contract entry point: slashes the member owning `sk` (paper §II:
  /// "user removal is done by passing a member's secret key to the
  /// contract"). Burns a portion of the stake, rewards ctx.from().
  void slash(TxContext& ctx, const field::Fr& sk);

  /// Whether `pk` is a currently active (unslashed) member.
  bool is_active(const field::Fr& pk) const;

  /// Calldata sizes for gas accounting at the submission site.
  static constexpr std::uint64_t kRegisterCalldataBytes = 4 + 32;  // selector + pk
  static constexpr std::uint64_t kSlashCalldataBytes = 4 + 32;     // selector + sk

 protected:
  /// Variant-specific storage work for an append at `index`.
  virtual void on_register_storage(TxContext& ctx, const field::Fr& pk,
                                   std::uint64_t index) = 0;
  /// Variant-specific storage work for a deletion at `index`.
  virtual void on_slash_storage(TxContext& ctx, std::uint64_t index) = 0;

  Chain& chain_;
  MembershipConfig config_;
  Address address_;
  /// Ordered list of registered pks (zeroed on slash).
  std::vector<field::Fr> pks_;
  std::unordered_map<field::Fr, std::uint64_t, field::FrHash> index_by_pk_;
  std::uint64_t active_members_ = 0;
};

/// The paper's contract: flat registry, constant-cost operations.
class RegistryListContract final : public MembershipContract {
 public:
  using MembershipContract::MembershipContract;

 protected:
  void on_register_storage(TxContext& ctx, const field::Fr& pk,
                           std::uint64_t index) override;
  void on_slash_storage(TxContext& ctx, std::uint64_t index) override;
};

/// The original RLN contract: full Merkle tree maintained on-chain.
class OnChainTreeContract final : public MembershipContract {
 public:
  OnChainTreeContract(Chain& chain, MembershipConfig config);

  /// Root as tracked by the contract (peers could read it via SLOAD).
  field::Fr on_chain_root() const { return tree_.root(); }

 protected:
  void on_register_storage(TxContext& ctx, const field::Fr& pk,
                           std::uint64_t index) override;
  void on_slash_storage(TxContext& ctx, std::uint64_t index) override;

 private:
  /// Charges gas for one root-path update: per level, read the sibling,
  /// evaluate Poseidon in EVM, write the parent node.
  void charge_path_update(TxContext& ctx);

  merkle::MerkleTree tree_;
};

}  // namespace wakurln::eth
