#include "eth/signal_board.h"

namespace wakurln::eth {

SignalBoardContract::SignalBoardContract(Chain& chain)
    : chain_(chain), address_(chain.allocate_contract_address()) {}

std::uint64_t SignalBoardContract::post(TxContext& ctx, std::uint64_t payload_bytes) {
  const GasSchedule& g = chain_.config().gas;
  // Message payloads are stored in storage slots (32 bytes each) plus an
  // index bump, and logged for listeners.
  const std::uint64_t slots = (payload_bytes + 31) / 32;
  ctx.gas().charge(slots * g.sstore_set + g.sstore_update);
  ctx.gas().charge(g.log_base + g.log_topic + payload_bytes * g.log_byte);
  const std::uint64_t id = next_signal_id_++;
  ctx.emit(SignalPosted{id, payload_bytes});
  return id;
}

}  // namespace wakurln::eth
