#pragma once
// Deterministic in-process Ethereum stand-in (DESIGN.md §2 substitution 3):
// a FIFO transaction pool, blocks mined at a configurable cadence, per-tx
// gas receipts, and contract events delivered when (and only when) the
// containing block is sealed — the visibility semantics behind the paper's
// off-chain-vs-on-chain propagation comparison (§III) and the membership
// group-synchronisation flow.

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "eth/gas.h"
#include "eth/ledger.h"
#include "field/fr.h"

namespace wakurln::eth {

/// Emitted when a member registers (pk appended at `index`).
struct MemberRegistered {
  field::Fr pk;
  std::uint64_t index;
};

/// Emitted when a member is slashed and removed.
struct MemberSlashed {
  field::Fr pk;
  std::uint64_t index;
  Address beneficiary;
  std::uint64_t burnt_wei;
  std::uint64_t reward_wei;
};

/// Emitted by the on-chain signal board (message posted on-chain).
struct SignalPosted {
  std::uint64_t signal_id;
  std::uint64_t payload_bytes;
};

using ContractEvent = std::variant<MemberRegistered, MemberSlashed, SignalPosted>;

/// Result of one transaction execution.
struct Receipt {
  std::uint64_t tx_id = 0;
  bool success = false;
  std::string error;
  std::uint64_t gas_used = 0;
  std::uint64_t block_number = 0;
  std::uint64_t block_timestamp = 0;
  std::uint64_t submitted_at = 0;
};

struct Block {
  std::uint64_t number = 0;
  std::uint64_t timestamp = 0;
  std::uint64_t gas_used = 0;
  std::vector<Receipt> receipts;
};

class Chain;

/// Execution context a contract method receives inside a transaction.
class TxContext {
 public:
  TxContext(Chain& chain, Address from, std::uint64_t value, std::uint64_t calldata_bytes);

  Address from() const { return from_; }
  std::uint64_t value() const { return value_; }
  Chain& chain() { return chain_; }
  GasMeter& gas() { return gas_; }

  /// Buffers an event; delivered to subscribers when the block is sealed.
  void emit(ContractEvent event);

  /// Marks the transaction failed with a reason (gas is still consumed).
  void revert(std::string reason);

  bool reverted() const { return !error_.empty(); }
  const std::string& error() const { return error_; }
  const std::vector<ContractEvent>& events() const { return events_; }

 private:
  Chain& chain_;
  Address from_;
  std::uint64_t value_;
  GasMeter gas_;
  std::string error_;
  std::vector<ContractEvent> events_;
};

/// Deterministic single-node chain: submit → (time passes) → mine → events.
class Chain {
 public:
  struct Config {
    /// Seconds between blocks (Ethereum mainnet ≈ 12–15 s).
    std::uint64_t block_time_seconds = 12;
    GasSchedule gas = GasSchedule::standard();
  };

  explicit Chain(Config config);

  const Config& config() const { return config_; }
  Ledger& ledger() { return ledger_; }
  const Ledger& ledger() const { return ledger_; }

  /// Allocates a fresh contract address.
  Address allocate_contract_address();

  /// Queues a transaction. `call` runs when the next block is mined.
  /// Returns the tx id. `now_seconds` is the submission time used for
  /// inclusion-latency accounting.
  std::uint64_t submit(Address from, std::uint64_t value, std::uint64_t calldata_bytes,
                       std::function<void(TxContext&)> call, std::uint64_t now_seconds);

  /// Mines all pending transactions into a block stamped `timestamp`.
  const Block& mine_block(std::uint64_t timestamp);

  std::uint64_t height() const { return blocks_.size(); }
  const std::vector<Block>& blocks() const { return blocks_; }
  std::size_t pending_count() const { return pending_.size(); }

  /// Receipt lookup by tx id; nullptr while the tx is still pending.
  const Receipt* receipt(std::uint64_t tx_id) const;

  using EventHandler = std::function<void(const ContractEvent&, const Block&)>;

  /// Registers a listener for sealed-block contract events.
  void subscribe_events(EventHandler handler);

  using BlockHandler = std::function<void(const Block&)>;

  /// Registers a listener fired once per sealed block, after every
  /// per-event handler has run (even for blocks with no events). Lets
  /// subscribers that buffer events (e.g. GroupSync's batched
  /// registration flush) finalise their state at a block boundary.
  void subscribe_blocks(BlockHandler handler);

 private:
  struct PendingTx {
    std::uint64_t id;
    Address from;
    std::uint64_t value;
    std::uint64_t calldata_bytes;
    std::function<void(TxContext&)> call;
    std::uint64_t submitted_at;
  };

  Config config_;
  Ledger ledger_;
  Address next_contract_address_ = 0x1000;
  std::uint64_t next_tx_id_ = 1;
  std::vector<PendingTx> pending_;
  std::vector<Block> blocks_;
  std::vector<Receipt> receipts_;  // indexed by tx id - 1
  std::vector<EventHandler> event_handlers_;
  std::vector<BlockHandler> block_handlers_;
};

}  // namespace wakurln::eth
